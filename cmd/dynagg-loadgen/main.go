// Command dynagg-loadgen drives parameterized HTTP load at a dynagg
// serving endpoint (dynagg-serve, or its own in-process server with
// -selfserve) and reports latency percentiles, throughput and error
// rates as a JSON artifact — the repo's ReqBench-style proof harness
// for the wire-level serving fast path.
//
// Workload shape:
//
//   - Query mix: a deterministic universe of -queries conjunctive
//     queries over the target's schema, drawn per request with Zipf
//     skew -zipf (0 = uniform). Skew concentrates traffic on few keys,
//     which is what makes the pre-encoded answer cache and singleflight
//     dedup measurable.
//   - Tenants: requests carry one of -tenants API keys round-robin, so
//     per-key budget accounting and 429 behaviour are exercised.
//   - Arrival: closed-loop by default (-clients workers, each waiting
//     for its response before sending the next), or open-loop with
//     -rate arrivals/sec where latency includes queueing — the
//     coordinated-omission-free mode. -burst-rate/-burst-every/-burst-len
//     overlay a square-wave burst on the open-loop schedule.
//   - Batching: -batch B > 1 issues batched POST /v1/search bodies of B
//     queries instead of single GETs.
//
// With -compare (selfserve only) it runs a cache-cold pass (every
// request a distinct query) and a cache-hot pass (the configured skewed
// mix) and reports the cold/hot p50 ratio — the soft CI signal that the
// pre-encoded hit path is actually cheaper than engine execution.
//
// Examples:
//
//	dynagg-loadgen -selfserve -duration 10s -clients 32
//	dynagg-loadgen -target http://localhost:8080 -rate 2000 -zipf 1.2
//	dynagg-loadgen -selfserve -compare -out BENCH_load.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/router"
	"github.com/dynagg/dynagg/internal/schema"
	"github.com/dynagg/dynagg/webiface"
)

type config struct {
	target    string
	selfserve bool
	compare   bool
	out       string

	duration time.Duration
	warmup   time.Duration
	clients  int
	rate     float64
	inflight int

	burstRate  float64
	burstEvery time.Duration
	burstLen   time.Duration

	queries int
	zipf    float64
	tenants int
	batch   int
	seed    int64

	// latency/error SLOs, hard-failed (exit 3) after the report is
	// written; 0 disables each
	sloP50Ms     float64
	sloP95Ms     float64
	sloP99Ms     float64
	sloErrorRate float64

	// selfserve knobs
	n, m, k      int
	budget       int
	round        time.Duration
	insert       int
	deleteFrac   float64
	shards       int
	gatherWidth  int
	routerShards int
	selfserveLog bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.target, "target", "", "base URL of a running dynagg-serve (empty with -selfserve)")
	flag.BoolVar(&cfg.selfserve, "selfserve", false, "serve an in-process simulated store and load it over loopback HTTP")
	flag.BoolVar(&cfg.compare, "compare", false, "run cache-cold and cache-hot passes and report the p50 ratio (selfserve only)")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report to this file (default stdout)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load duration per pass")
	flag.DurationVar(&cfg.warmup, "warmup", time.Second, "warmup duration excluded from statistics")
	flag.IntVar(&cfg.clients, "clients", 16, "closed-loop worker count (ignored when -rate > 0)")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
	flag.IntVar(&cfg.inflight, "max-inflight", 512, "open-loop concurrent request cap (arrivals past it queue, counted in latency)")
	flag.Float64Var(&cfg.burstRate, "burst-rate", 0, "open-loop burst arrival rate (0 = no bursts)")
	flag.DurationVar(&cfg.burstEvery, "burst-every", 5*time.Second, "burst period")
	flag.DurationVar(&cfg.burstLen, "burst-len", time.Second, "burst window length")
	flag.IntVar(&cfg.queries, "queries", 256, "distinct queries in the workload universe")
	flag.Float64Var(&cfg.zipf, "zipf", 1.1, "Zipf skew over the query universe (>1; 0 = uniform)")
	flag.IntVar(&cfg.tenants, "tenants", 4, "distinct API keys cycled across requests (0 = anonymous)")
	flag.IntVar(&cfg.batch, "batch", 0, "queries per batched POST (0/1 = single GETs)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload randomness seed")
	flag.IntVar(&cfg.n, "n", 40000, "selfserve: dataset size")
	flag.IntVar(&cfg.m, "m", 8, "selfserve: attribute count")
	flag.IntVar(&cfg.k, "k", 250, "selfserve: interface top-k cap")
	flag.IntVar(&cfg.budget, "budget", 0, "selfserve: per-key budget per round (0 = unlimited)")
	flag.DurationVar(&cfg.round, "round", 0, "selfserve: churn round length (0 = static database)")
	flag.IntVar(&cfg.insert, "insert", 300, "selfserve: tuples inserted per round")
	flag.Float64Var(&cfg.deleteFrac, "delete", 0.001, "selfserve: fraction deleted per round")
	flag.IntVar(&cfg.shards, "shards", 1, "selfserve: hash-partition the store N ways")
	flag.IntVar(&cfg.gatherWidth, "gather", 1, "selfserve: scatter-gather goroutines per query")
	flag.IntVar(&cfg.routerShards, "selfserve-router", 0, "selfserve: run N in-process shard daemons behind a dynagg-router instead of one handler (static data)")
	flag.BoolVar(&cfg.selfserveLog, "selfserve-log", false, "selfserve: log churn rounds")
	flag.Float64Var(&cfg.sloP50Ms, "slo-p50", 0, "fail (exit 3) if any pass's p50 exceeds this many ms (0 = off)")
	flag.Float64Var(&cfg.sloP95Ms, "slo-p95", 0, "fail (exit 3) if any pass's p95 exceeds this many ms (0 = off)")
	flag.Float64Var(&cfg.sloP99Ms, "slo-p99", 0, "fail (exit 3) if any pass's p99 exceeds this many ms (0 = off)")
	flag.Float64Var(&cfg.sloErrorRate, "slo-error-rate", 0, "fail (exit 3) if any pass's error rate exceeds this fraction (0 = off)")
	flag.Parse()

	if cfg.routerShards > 0 {
		cfg.selfserve = true // -selfserve-router implies an in-process target
	}
	if cfg.target == "" && !cfg.selfserve {
		log.Fatal("need -target URL or -selfserve (a -target may point at a dynagg-router as well as a dynagg-serve)")
	}
	if cfg.compare && !cfg.selfserve {
		log.Fatal("-compare requires -selfserve (both passes must hit a fresh store)")
	}
	if cfg.compare && cfg.routerShards > 0 {
		log.Fatal("-compare measures the single-process answer cache; it does not combine with -selfserve-router")
	}

	report, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report.SLO = evaluateSLOs(cfg, report.Passes)
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if cfg.out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(cfg.out, raw, 0o644); err != nil {
		log.Fatal(err)
	} else {
		log.Printf("wrote %s", cfg.out)
	}
	// SLO verdict AFTER the report lands, so a violated run still leaves
	// its artifact behind for the postmortem.
	if report.SLO != nil && !report.SLO.Passed {
		for _, v := range report.SLO.Violations {
			log.Printf("SLO violation: %s", v)
		}
		os.Exit(3)
	}
}

// sloResult records the configured latency/error-rate objectives and
// every per-pass (per workload class) violation.
type sloResult struct {
	P50LimitMs     float64  `json:"p50_limit_ms,omitempty"`
	P95LimitMs     float64  `json:"p95_limit_ms,omitempty"`
	P99LimitMs     float64  `json:"p99_limit_ms,omitempty"`
	ErrorRateLimit float64  `json:"error_rate_limit,omitempty"`
	Violations     []string `json:"violations"`
	Passed         bool     `json:"passed"`
}

// evaluateSLOs checks every pass against the configured objectives; nil
// when no SLO flag is set.
func evaluateSLOs(cfg config, passes []passResult) *sloResult {
	if cfg.sloP50Ms == 0 && cfg.sloP95Ms == 0 && cfg.sloP99Ms == 0 && cfg.sloErrorRate == 0 {
		return nil
	}
	out := &sloResult{
		P50LimitMs:     cfg.sloP50Ms,
		P95LimitMs:     cfg.sloP95Ms,
		P99LimitMs:     cfg.sloP99Ms,
		ErrorRateLimit: cfg.sloErrorRate,
		Violations:     []string{},
	}
	check := func(pass string, metric string, got, limit float64, unit string) {
		if limit > 0 && got > limit {
			out.Violations = append(out.Violations,
				fmt.Sprintf("pass %s: %s %.3f%s exceeds SLO %.3f%s", pass, metric, got, unit, limit, unit))
		}
	}
	for _, p := range passes {
		check(p.Name, "p50", p.P50Ms, cfg.sloP50Ms, "ms")
		check(p.Name, "p95", p.P95Ms, cfg.sloP95Ms, "ms")
		check(p.Name, "p99", p.P99Ms, cfg.sloP99Ms, "ms")
		check(p.Name, "error rate", p.ErrorRate, cfg.sloErrorRate, "")
	}
	out.Passed = len(out.Violations) == 0
	return out
}

// report is the BENCH_load.json shape.
type report struct {
	Config   reportConfig  `json:"config"`
	Passes   []passResult  `json:"passes"`
	ColdHot  *coldHotRatio `json:"cold_hot,omitempty"`
	SLO      *sloResult    `json:"slo,omitempty"`
	ServerMs float64       `json:"-"`
}

type reportConfig struct {
	Target   string  `json:"target"`
	Duration string  `json:"duration"`
	Clients  int     `json:"clients"`
	RateRPS  float64 `json:"rate_rps"`
	Queries  int     `json:"queries"`
	Zipf     float64 `json:"zipf"`
	Tenants  int     `json:"tenants"`
	Batch    int     `json:"batch"`
	Shards   int     `json:"shards"`
	Gather   int     `json:"gather"`
	Router   int     `json:"router_shards,omitempty"`
	Seed     int64   `json:"seed"`
}

type passResult struct {
	Name          string  `json:"name"`
	Requests      int64   `json:"requests"`
	QueriesSent   int64   `json:"queries_sent"`
	Seconds       float64 `json:"seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Errors        int64   `json:"errors"`
	Status429     int64   `json:"status_429"`
	ErrorRate     float64 `json:"error_rate"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	// Histogram is the pass's full latency distribution in the shared
	// fixed obs bucket layout (log2 bounds), so offline analysis can
	// derive any percentile and compare runs bucket-for-bucket.
	Histogram *latencyHistogram `json:"latency_histogram,omitempty"`
}

// latencyHistogram serialises one pass's latency distribution:
// per-bucket (non-cumulative) counts over the fixed internal/obs bounds,
// with the overflow bucket last.
type latencyHistogram struct {
	UpperBoundsMs []float64 `json:"upper_bounds_ms"`
	Counts        []uint64  `json:"counts"`
	Count         uint64    `json:"count"`
	SumMs         float64   `json:"sum_ms"`
}

// newLatencyHistogram folds the recorded latencies into the obs layout.
func newLatencyHistogram(durs []time.Duration) *latencyHistogram {
	var h obs.Histogram
	for _, d := range durs {
		h.Observe(d)
	}
	s := h.Snapshot()
	bounds := obs.Bounds()
	ms := make([]float64, len(bounds))
	for i, b := range bounds {
		ms[i] = b * 1000
	}
	return &latencyHistogram{
		UpperBoundsMs: ms,
		Counts:        s.Counts,
		Count:         s.Count,
		SumMs:         s.SumSeconds * 1000,
	}
}

type coldHotRatio struct {
	ColdP50Ms float64 `json:"cold_p50_ms"`
	HotP50Ms  float64 `json:"hot_p50_ms"`
	P50Ratio  float64 `json:"cold_hot_p50_ratio"`
}

func run(cfg config) (*report, error) {
	target := cfg.target
	var shutdown func()
	if cfg.selfserve {
		var err error
		if cfg.routerShards > 0 {
			target, shutdown, err = startSelfServeRouter(cfg)
		} else {
			target, shutdown, err = startSelfServe(cfg)
		}
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}

	sch, err := fetchSchema(target)
	if err != nil {
		return nil, err
	}

	rep := &report{Config: reportConfig{
		Target: target, Duration: cfg.duration.String(), Clients: cfg.clients,
		RateRPS: cfg.rate, Queries: cfg.queries, Zipf: cfg.zipf,
		Tenants: cfg.tenants, Batch: cfg.batch, Shards: cfg.shards,
		Gather: cfg.gatherWidth, Router: cfg.routerShards, Seed: cfg.seed,
	}}

	if cfg.compare {
		// Cold pass: one fresh never-repeated query per request defeats
		// the answer cache, so every request pays engine execution and a
		// full encode. Hot pass: the configured skewed mix over a small
		// universe, where repeats serve pre-encoded bodies.
		cold, err := runPass(cfg, target, "cold", newColdMix(sch, cfg))
		if err != nil {
			return nil, err
		}
		hot, err := runPass(cfg, target, "hot", newMix(sch, cfg))
		if err != nil {
			return nil, err
		}
		rep.Passes = []passResult{*cold, *hot}
		ratio := 0.0
		if hot.P50Ms > 0 {
			ratio = cold.P50Ms / hot.P50Ms
		}
		rep.ColdHot = &coldHotRatio{ColdP50Ms: cold.P50Ms, HotP50Ms: hot.P50Ms, P50Ratio: ratio}
		return rep, nil
	}

	pass, err := runPass(cfg, target, "load", newMix(sch, cfg))
	if err != nil {
		return nil, err
	}
	rep.Passes = []passResult{*pass}
	return rep, nil
}

// wireSchema mirrors the serving /v1/schema shape (kept local so the
// loadgen exercises the wire format as a real foreign client would).
type wireSchema struct {
	K     int `json:"k"`
	Attrs []struct {
		Name   string   `json:"name"`
		Domain []string `json:"domain"`
	} `json:"attrs"`
}

func fetchSchema(target string) (*wireSchema, error) {
	resp, err := http.Get(strings.TrimRight(target, "/") + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("schema fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("schema fetch: %s", resp.Status)
	}
	var sch wireSchema
	if err := json.NewDecoder(resp.Body).Decode(&sch); err != nil {
		return nil, fmt.Errorf("schema decode: %w", err)
	}
	if len(sch.Attrs) == 0 {
		return nil, errors.New("schema fetch: no attributes")
	}
	return &sch, nil
}

// mix generates one request's query index per draw. next must be safe
// for concurrent callers.
type mix struct {
	urls   []string   // pre-built single-GET request URLs per query index
	wheres [][]string // predicate strings per query index (batch bodies)
	next   func() int
}

// newMix builds the deterministic query universe and its skewed sampler.
func newMix(sch *wireSchema, cfg config) *mix {
	rng := rand.New(rand.NewSource(cfg.seed))
	m := buildUniverse(sch, cfg.queries, rng)
	if cfg.zipf > 1 && cfg.queries > 1 {
		var mu sync.Mutex
		z := rand.NewZipf(rng, cfg.zipf, 1, uint64(cfg.queries-1))
		m.next = func() int {
			mu.Lock()
			v := int(z.Uint64())
			mu.Unlock()
			return v
		}
	} else {
		var mu sync.Mutex
		m.next = func() int {
			mu.Lock()
			v := rng.Intn(cfg.queries)
			mu.Unlock()
			return v
		}
	}
	return m
}

// newColdMix cycles through a universe so large relative to the pass
// that practically every request is a first-seen query: a fresh
// sequential index per draw over universeSize entries built on demand.
func newColdMix(sch *wireSchema, cfg config) *mix {
	// Enough distinct queries that even a fast pass never wraps: the
	// universe is all 1-pred and 2-pred combinations, cycled.
	rng := rand.New(rand.NewSource(cfg.seed + 7))
	size := 1 << 16
	m := buildUniverse(sch, size, rng)
	var mu sync.Mutex
	i := 0
	m.next = func() int {
		mu.Lock()
		v := i % size
		i++
		mu.Unlock()
		return v
	}
	return m
}

// buildUniverse materializes n deterministic conjunctive queries (1–2
// predicates, distinct attributes, values within each attribute's
// domain) plus their pre-rendered GET URLs and batch predicate strings.
func buildUniverse(sch *wireSchema, n int, rng *rand.Rand) *mix {
	m := &mix{urls: make([]string, n), wheres: make([][]string, n)}
	attrs := len(sch.Attrs)
	for i := 0; i < n; i++ {
		np := 1 + rng.Intn(2)
		if attrs == 1 {
			np = 1
		}
		a0 := rng.Intn(attrs)
		var preds []string
		for p := 0; p < np; p++ {
			attr := a0
			if p == 1 {
				for attr == a0 {
					attr = rng.Intn(attrs)
				}
			}
			dom := len(sch.Attrs[attr].Domain)
			if dom == 0 {
				dom = 1
			}
			preds = append(preds, fmt.Sprintf("%d:%d", attr, rng.Intn(dom)))
		}
		sort.Strings(preds) // stable wire form; server sorts by attribute anyway
		m.wheres[i] = preds
		m.urls[i] = "/v1/search?where=" + strings.Join(preds, "&where=")
	}
	return m
}

// workerStats is one goroutine's private tally, merged after the pass.
type workerStats struct {
	requests  int64
	queries   int64
	errors    int64
	s429      int64
	latencies []time.Duration
}

// runPass drives one measured load pass and reduces its statistics.
func runPass(cfg config, target string, name string, m *mix) (*passResult, error) {
	base := strings.TrimRight(target, "/")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.inflight + cfg.clients,
			MaxIdleConnsPerHost: cfg.inflight + cfg.clients,
		},
	}

	var tenantCtr int64
	var tenantMu sync.Mutex
	tenant := func() string {
		if cfg.tenants <= 0 {
			return ""
		}
		tenantMu.Lock()
		t := tenantCtr
		tenantCtr++
		tenantMu.Unlock()
		return fmt.Sprintf("tenant-%d", t%int64(cfg.tenants))
	}

	// one issues a single logical request (GET, or a POST batch of
	// cfg.batch queries) and records it into ws when record is true.
	one := func(ws *workerStats, record bool, start time.Time) {
		var resp *http.Response
		var err error
		nq := 1
		if cfg.batch > 1 {
			nq = cfg.batch
			var body strings.Builder
			body.WriteString(`{"queries":[`)
			for b := 0; b < cfg.batch; b++ {
				if b > 0 {
					body.WriteByte(',')
				}
				body.WriteString(`{"where":["`)
				body.WriteString(strings.Join(m.wheres[m.next()], `","`))
				body.WriteString(`"]}`)
			}
			body.WriteString(`]}`)
			req, rerr := http.NewRequest(http.MethodPost, base+"/v1/search", strings.NewReader(body.String()))
			if rerr != nil {
				err = rerr
			} else {
				req.Header.Set("Content-Type", "application/json")
				if k := tenant(); k != "" {
					req.Header.Set("X-API-Key", k)
				}
				resp, err = client.Do(req)
			}
		} else {
			req, rerr := http.NewRequest(http.MethodGet, base+m.urls[m.next()], nil)
			if rerr != nil {
				err = rerr
			} else {
				if k := tenant(); k != "" {
					req.Header.Set("X-API-Key", k)
				}
				resp, err = client.Do(req)
			}
		}
		var status int
		if err == nil {
			status = resp.StatusCode
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if !record {
			return
		}
		elapsed := time.Since(start)
		ws.requests++
		ws.queries += int64(nq)
		switch {
		case err != nil:
			ws.errors++
		case status == http.StatusTooManyRequests:
			ws.s429++
		case status != http.StatusOK:
			ws.errors++
		}
		ws.latencies = append(ws.latencies, elapsed)
	}

	warmupUntil := time.Now().Add(cfg.warmup)
	deadline := warmupUntil.Add(cfg.duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	var stats []*workerStats
	if cfg.rate > 0 {
		stats = runOpenLoop(ctx, cfg, warmupUntil, one)
	} else {
		stats = runClosedLoop(ctx, cfg, warmupUntil, one)
	}

	out := &passResult{Name: name, Seconds: cfg.duration.Seconds()}
	var all []time.Duration
	for _, ws := range stats {
		out.Requests += ws.requests
		out.QueriesSent += ws.queries
		out.Errors += ws.errors
		out.Status429 += ws.s429
		all = append(all, ws.latencies...)
	}
	if out.Seconds > 0 {
		out.ThroughputRPS = float64(out.Requests) / out.Seconds
	}
	if out.Requests > 0 {
		out.ErrorRate = float64(out.Errors) / float64(out.Requests)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.P50Ms = pctMs(all, 0.50)
	out.P90Ms = pctMs(all, 0.90)
	out.P95Ms = pctMs(all, 0.95)
	out.P99Ms = pctMs(all, 0.99)
	if len(all) > 0 {
		out.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	out.Histogram = newLatencyHistogram(all)
	return out, nil
}

// runClosedLoop: each of cfg.clients workers issues its next request as
// soon as the previous response is fully read.
func runClosedLoop(ctx context.Context, cfg config, warmupUntil time.Time, one func(*workerStats, bool, time.Time)) []*workerStats {
	stats := make([]*workerStats, cfg.clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		ws := &workerStats{}
		stats[c] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := time.Now()
				one(ws, start.After(warmupUntil), start)
			}
		}()
	}
	wg.Wait()
	return stats
}

// runOpenLoop schedules arrivals at cfg.rate (with optional square-wave
// bursts) independent of response times; each arrival's latency starts
// at its SCHEDULED time, so queueing behind the -max-inflight cap is
// measured, not hidden (no coordinated omission).
func runOpenLoop(ctx context.Context, cfg config, warmupUntil time.Time, one func(*workerStats, bool, time.Time)) []*workerStats {
	var mu sync.Mutex
	var stats []*workerStats
	pool := sync.Pool{New: func() any { return &workerStats{} }}
	sem := make(chan struct{}, cfg.inflight)
	var wg sync.WaitGroup

	launch := func(scheduled time.Time) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ws := pool.Get().(*workerStats)
			one(ws, scheduled.After(warmupUntil), scheduled)
			pool.Put(ws)
		}()
	}

	start := time.Now()
	next := start
	for ctx.Err() == nil {
		rate := cfg.rate
		if cfg.burstRate > cfg.rate && cfg.burstEvery > 0 {
			phase := time.Since(start) % cfg.burstEvery
			if phase < cfg.burstLen {
				rate = cfg.burstRate
			}
		}
		interval := time.Duration(float64(time.Second) / rate)
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
			if ctx.Err() != nil {
				break
			}
		}
		launch(next)
		next = next.Add(interval)
	}
	wg.Wait()

	// Drain the pool into a merged snapshot. Pool entries not currently
	// checked out are all entries, since every launch returned.
	for {
		ws := pool.Get().(*workerStats)
		if ws.requests == 0 && len(ws.latencies) == 0 {
			break
		}
		mu.Lock()
		stats = append(stats, ws)
		mu.Unlock()
	}
	return stats
}

func pctMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// startSelfServe builds a local simulated store (sharded when
// -shards > 1), mounts the webiface handler on a loopback listener and
// returns its base URL. The optional churn round mirrors dynagg-serve.
func startSelfServe(cfg config) (string, func(), error) {
	data := dynagg.AutosLikeN(cfg.seed, cfg.n, cfg.m)
	init0 := cfg.n * 9 / 10

	var iface webiface.Backend
	var churn func() error
	if cfg.shards > 1 {
		env, err := dynagg.NewShardedEnv(data, init0, cfg.seed+1, cfg.shards)
		if err != nil {
			return "", nil, err
		}
		sh := dynagg.NewShardedIface(env.Store, cfg.k, nil)
		sh.SetGatherWorkers(cfg.gatherWidth)
		iface = sh
		churn = func() error {
			if err := env.InsertFromPool(cfg.insert); err != nil {
				return err
			}
			if err := env.DeleteFraction(cfg.deleteFrac); err != nil {
				return err
			}
			env.Store.AdvanceEpoch()
			return nil
		}
	} else {
		env, err := dynagg.NewEnv(data, init0, cfg.seed+1)
		if err != nil {
			return "", nil, err
		}
		iface = dynagg.NewIface(env.Store, cfg.k, nil)
		churn = func() error {
			if err := env.InsertFromPool(cfg.insert); err != nil {
				return err
			}
			return env.DeleteFraction(cfg.deleteFrac)
		}
	}

	h := webiface.NewHandler(iface)
	h.SetPerKeyBudget(cfg.budget)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()

	stop := make(chan struct{})
	if cfg.round > 0 {
		go func() {
			t := time.NewTicker(cfg.round)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				if err := churn(); err != nil {
					log.Printf("selfserve churn: %v", err)
				}
				h.ResetBudgets()
				if cfg.selfserveLog {
					log.Printf("selfserve round: version=%d queries=%d", iface.Version(), iface.TotalQueries())
				}
			}
		}()
	}

	shutdown := func() {
		close(stop)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// startSelfServeRouter stands up the multi-process topology in one
// process: N loopback shard daemons (a 1-way store behind a ShardAdmin,
// exactly what `dynagg-serve -shard-mode` runs) fronted by a router that
// performs the startup epoch handshake and then serves as the load
// target. The fleet is static — churn needs real daemons driving their
// own mutators — but a -round ticker still re-handshakes the fleet so
// per-key budgets reset on epoch boundaries like production.
func startSelfServeRouter(cfg config) (string, func(), error) {
	data := dynagg.AutosLikeN(cfg.seed, cfg.n, cfg.m)
	init0 := cfg.n * 9 / 10
	env, err := dynagg.NewShardedEnv(data, init0, cfg.seed+1, cfg.routerShards)
	if err != nil {
		return "", nil, err
	}
	if cfg.round > 0 && (cfg.insert > 0 || cfg.deleteFrac > 0) {
		log.Printf("selfserve-router: churn flags ignored (static fleet); rounds only re-handshake epochs")
	}

	var (
		bases []string
		srvs  []*http.Server
	)
	closeAll := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, s := range srvs {
			_ = s.Shutdown(sctx)
		}
	}
	for i := 0; i < cfg.routerShards; i++ {
		var part []*schema.Tuple
		env.Store.Shard(i).ForEach(func(tp *schema.Tuple) { part = append(part, tp.Clone(tp.ID)) })
		ss := hiddendb.NewShardedStore(env.Store.Schema(), 1)
		if err := ss.ApplyBatch(part, nil); err != nil {
			closeAll()
			return "", nil, err
		}
		h := webiface.NewHandler(hiddendb.NewShardedIface(ss, cfg.k, nil))
		admin := router.NewShardAdmin(ss, h, router.AdminOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return "", nil, err
		}
		srv := &http.Server{Handler: admin}
		go func() { _ = srv.Serve(ln) }()
		srvs = append(srvs, srv)
		bases = append(bases, "http://"+ln.Addr().String())
	}

	rt, err := router.New(bases, router.Options{PerKeyBudget: cfg.budget})
	if err != nil {
		closeAll()
		return "", nil, err
	}
	if _, err := rt.Handshake(context.Background()); err != nil {
		closeAll()
		return "", nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeAll()
		return "", nil, err
	}
	rsrv := &http.Server{Handler: rt}
	go func() { _ = rsrv.Serve(rln) }()
	srvs = append(srvs, rsrv)

	stop := make(chan struct{})
	if cfg.round > 0 {
		go func() {
			t := time.NewTicker(cfg.round)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				if seq, err := rt.Handshake(context.Background()); err != nil {
					log.Printf("selfserve-router handshake: %v", err)
				} else if cfg.selfserveLog {
					log.Printf("selfserve-router round: fleet epoch %d", seq)
				}
			}
		}()
	}

	shutdown := func() {
		close(stop)
		closeAll()
	}
	return "http://" + rln.Addr().String(), shutdown, nil
}
