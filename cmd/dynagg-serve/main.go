// Command dynagg-serve exposes a simulated dynamic hidden database over
// HTTP: a synthetic store behind the restrictive top-k interface, served
// concurrently to any number of clients through the webiface wire format,
// with optional per-API-key query budgets and round-by-round churn.
//
// It is the serving half of the paper's live-experiment setting: point
// estimators (dynagg.NewRemoteTracker, examples/remote) at it, or load
// test it (cmd/dynagg-loadgen) — reads are answered from immutable
// snapshots, so the churn goroutine never blocks a client. Serving
// diagnostics are exposed at /v1/stats (JSON) and /v1/metrics
// (Prometheus-style plaintext: query counts, store version, per-key
// budget accounting, answer-cache hit/miss/singleflight counters).
//
// With -shards N the store is hash-partitioned N ways: each round's
// churn is applied by one mutator goroutine per shard, a new version
// epoch (one immutable snapshot per shard) is published at the round
// boundary, and every query is answered by scatter-gather across the
// pinned epoch — byte-identical to the unsharded store.
//
// With -shard-mode the daemon serves as ONE shard of a dynagg-router
// fleet: the /v1/shard/* epoch admin wire is exposed, churn mutates
// under the admin's quiescence lock, and epoch publication is left
// entirely to the router's two-phase fleet handshake — the daemon never
// advances its own epoch. docs/deploy.md describes the topology.
//
// Usage examples:
//
//	dynagg-serve                                  # 40k tuples on :8080
//	dynagg-serve -addr :9090 -n 200000 -k 1000
//	dynagg-serve -budget 500 -round 10s           # G=500 per key per round
//	dynagg-serve -round 5s -insert 300 -delete 0.001
//	dynagg-serve -shards 8 -gather 4 -round 10s   # sharded scatter-gather
//	dynagg-serve -shard-mode -addr :8081          # one shard of a router fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dynagg "github.com/dynagg/dynagg"
	"github.com/dynagg/dynagg/internal/obs"
	"github.com/dynagg/dynagg/internal/router"
	"github.com/dynagg/dynagg/webiface"
)

// fatal reports a startup error through the structured logger and exits.
func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "error", err)
	os.Exit(1)
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		n         = flag.Int("n", 40000, "dataset size (tuple pool)")
		init0     = flag.Int("initial", 0, "initial database size (default 90% of n)")
		m         = flag.Int("m", 38, "number of attributes (<=38)")
		k         = flag.Int("k", 250, "interface top-k cap")
		seed      = flag.Int64("seed", 1, "random seed")
		budget    = flag.Int("budget", 0, "per-API-key queries per round (0 = unlimited)")
		round     = flag.Duration("round", 0, "round length; every round applies churn and resets budgets (0 = static database)")
		insert    = flag.Int("insert", 300, "tuples inserted per round")
		del       = flag.Float64("delete", 0.001, "fraction of tuples deleted per round")
		shards    = flag.Int("shards", 1, "hash-partition the store N ways (scatter-gather serving)")
		gather    = flag.Int("gather", 1, "scatter-gather goroutines per query in sharded mode")
		shardMode = flag.Bool("shard-mode", false, "serve as one shard of a dynagg-router fleet: expose the /v1/shard/* epoch admin wire and leave epoch publication to the router")
		freezeTO  = flag.Duration("freeze-timeout", 30*time.Second, "shard mode: auto-abort a frozen epoch no router published in time")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr = flag.String("pprof-addr", "", "optional admin listener serving net/http/pprof (empty = disabled)")
		debugReqs = flag.Int("debug-requests", webiface.DefaultDebugRequests, "size of the /v1/debug/requests ring (<= 0 disables)")
		slowReq   = flag.Duration("slow-request", webiface.DefaultSlowRequest, "record successful requests at or above this latency in the debug ring (<= 0 records every request)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	obs.ServePprof(*pprofAddr, logger)
	if *init0 == 0 {
		*init0 = *n * 9 / 10
	}

	data := dynagg.AutosLikeN(*seed, *n, *m)

	// backend abstracts over the serving stacks — unsharded, sharded, and
	// router-fleet shard — so the HTTP/lifecycle plumbing below is
	// written once.
	type backend struct {
		handler http.Handler
		reset   func() // restore per-key budgets at a round boundary
		size    func() int
		version func() uint64
		queries func() uint64
		churn   func() error // one round of churn (+ epoch publication unless the router owns it)
	}
	var b backend
	if *shardMode || *shards > 1 {
		env, err := dynagg.NewShardedEnv(data, *init0, *seed+1, *shards)
		if err != nil {
			fatal(logger, "sharded env", err)
		}
		iface := dynagg.NewShardedIface(env.Store, *k, nil)
		iface.SetGatherWorkers(*gather)
		h := webiface.NewHandler(iface)
		h.SetPerKeyBudget(*budget)
		h.SetRequestLog(*debugReqs, *slowReq)
		b = backend{
			handler: h,
			reset:   h.ResetBudgets,
			size:    env.Store.Size,
			version: iface.Version,
			queries: iface.TotalQueries,
			churn: func() error {
				// Churn fans out one mutator goroutine per shard; the new
				// epoch is published only after every shard has applied
				// its partition, so clients never see a torn round.
				if err := env.InsertFromPool(*insert); err != nil {
					return err
				}
				if err := env.DeleteFraction(*del); err != nil {
					return err
				}
				env.Store.AdvanceEpoch()
				return nil
			},
		}
		if *shardMode {
			// As one shard of a router fleet the daemon never publishes
			// epochs itself: churn mutates under the admin's quiescence
			// lock and the router's two-phase handshake decides when a
			// new epoch becomes visible, fleet-wide. Budgets are the
			// router's to account, so the local round driver does not
			// reset them either.
			admin := router.NewShardAdmin(env.Store, h, router.AdminOptions{FreezeTimeout: *freezeTO})
			mutate := func() error {
				if err := env.InsertFromPool(*insert); err != nil {
					return err
				}
				return env.DeleteFraction(*del)
			}
			b.handler = admin
			b.churn = func() error { return admin.WithMutators(mutate) }
		}
	} else {
		env, err := dynagg.NewEnv(data, *init0, *seed+1)
		if err != nil {
			fatal(logger, "env", err)
		}
		iface := dynagg.NewIface(env.Store, *k, nil)
		h := webiface.NewHandler(iface)
		h.SetPerKeyBudget(*budget)
		h.SetRequestLog(*debugReqs, *slowReq)
		b = backend{
			handler: h,
			reset:   h.ResetBudgets,
			size:    env.Store.Size,
			version: env.Store.Version,
			queries: iface.TotalQueries,
			churn: func() error {
				if err := env.InsertFromPool(*insert); err != nil {
					return err
				}
				return env.DeleteFraction(*del)
			},
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *round > 0 {
		// The round driver goroutine: snapshot isolation (per-shard in
		// sharded mode) lets churn apply while clients keep reading the
		// previous version/epoch.
		go func() {
			t := time.NewTicker(*round)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if err := b.churn(); err != nil {
					logger.Error("round churn failed", "error", err)
				}
				if !*shardMode {
					b.reset()
				}
				logger.Info("round complete",
					"size", b.size(), "version", b.version(), "queries", b.queries())
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: b.handler}
	go func() {
		// SIGINT/SIGTERM: stop accepting, drain in-flight requests for up
		// to 10s, then exit. Clients mid-search get their answers.
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}()

	logger.Info("serving hidden database",
		"addr", *addr, "size", b.size(), "k", *k, "m", *m, "budget", *budget,
		"round", (*round).String(), "shards", *shards, "shard_mode", *shardMode)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, "listen", err)
	}
	logger.Info("drained; bye", "queries", b.queries())
}
