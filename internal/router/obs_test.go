package router

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/dynagg/dynagg/internal/obs"
)

// debugBody mirrors the /v1/debug/requests JSON shape.
type debugBody struct {
	SlowThresholdMs float64             `json:"slow_threshold_ms"`
	Records         []obs.RequestRecord `json:"records"`
}

func getDebugRequests(t *testing.T, base string) debugBody {
	t.Helper()
	status, body := fetch(t, http.MethodGet, base+"/v1/debug/requests", "", "")
	if status != http.StatusOK {
		t.Fatalf("debug requests status %d: %s", status, body)
	}
	var out debugBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("debug requests body not JSON: %v (%s)", err, body)
	}
	return out
}

// TestTracePropagation: a trace ID supplied to the router is echoed on
// the response, forwarded to every shard daemon (observable in each
// shard's own debug ring), and recorded in the router's ring with
// per-shard timings and the pinned epoch.
func TestTracePropagation(t *testing.T) {
	f := newFleet(t, 3, 411, 300)
	for _, h := range f.handlers {
		h.SetRequestLog(64, 0) // record every request, not just slow ones
	}
	rt, srv := dialRouter(t, f, Options{})
	rt.SetRequestLog(64, 0)
	f.round(rt)

	const trace = "cafef00d1badd00d"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/search?where=0:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("router echoed trace %q, want %q", got, trace)
	}

	// Every shard daemon saw the routed request under the same trace.
	for i, base := range f.bases() {
		ring := getDebugRequests(t, base)
		found := false
		for _, rec := range ring.Records {
			if rec.Trace == trace {
				found = true
			}
		}
		if !found {
			t.Errorf("shard %d debug ring has no record with trace %q: %+v", i, trace, ring.Records)
		}
	}

	// The router's own ring carries the record with shard timings and
	// the pinned epoch.
	ring := getDebugRequests(t, srv.URL)
	var rec *obs.RequestRecord
	for i := range ring.Records {
		if ring.Records[i].Trace == trace {
			rec = &ring.Records[i]
		}
	}
	if rec == nil {
		t.Fatalf("router debug ring has no record with trace %q", trace)
	}
	if rec.Route != "search" || rec.Status != http.StatusOK || rec.Outcome != "ok" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Epoch != rt.Seq() {
		t.Errorf("record epoch %d, want pinned %d", rec.Epoch, rt.Seq())
	}
	if len(rec.Shards) != f.ref.NumShards() {
		t.Fatalf("record has %d shard timings, want %d", len(rec.Shards), f.ref.NumShards())
	}
	for i, st := range rec.Shards {
		if st.Shard != i || st.DurationMs < 0 || st.Error != "" {
			t.Errorf("shard timing %d = %+v", i, st)
		}
	}
}

// TestTraceMintedAndBatchPropagation: absent a caller trace the router
// mints one, and batched POSTs propagate it the same way.
func TestTraceMintedAndBatchPropagation(t *testing.T) {
	f := newFleet(t, 2, 412, 200)
	for _, h := range f.handlers {
		h.SetRequestLog(64, 0)
	}
	rt, srv := dialRouter(t, f, Options{})
	rt.SetRequestLog(64, 0)
	f.round(rt)

	resp, err := http.Post(srv.URL+"/v1/search", "application/json",
		strings.NewReader(`{"queries":[{"where":["0:1"]},{"where":["1:0"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	minted := resp.Header.Get(obs.TraceHeader)
	if len(minted) != 16 {
		t.Fatalf("minted trace %q, want 16 hex chars", minted)
	}

	for i, base := range f.bases() {
		ring := getDebugRequests(t, base)
		found := false
		for _, rec := range ring.Records {
			if rec.Trace == minted {
				found = true
			}
		}
		if !found {
			t.Errorf("shard %d never saw minted trace %q", i, minted)
		}
	}
	ring := getDebugRequests(t, srv.URL)
	if len(ring.Records) == 0 || ring.Records[0].Trace != minted || ring.Records[0].Route != "search_batch" {
		t.Fatalf("router ring = %+v", ring.Records)
	}
}

// TestRouterMetricsHistograms: after traffic the router exports latency
// histogram families with consistent bucket counts.
func TestRouterMetricsHistograms(t *testing.T) {
	f := newFleet(t, 2, 413, 200)
	rt, srv := dialRouter(t, f, Options{})
	f.round(rt)
	for i := 0; i < 3; i++ {
		if status, body := fetch(t, http.MethodGet, srv.URL+"/v1/search?where=0:0", "", ""); status != http.StatusOK {
			t.Fatalf("search status %d: %s", status, body)
		}
	}
	status, body := fetch(t, http.MethodGet, srv.URL+"/v1/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, want := range []string{
		`dynagg_router_request_seconds_count{route="search"} 3`,
		`dynagg_router_request_seconds_bucket{route="search",le="+Inf"} 3`,
		`dynagg_router_merge_seconds_count 3`,
		`dynagg_router_shard_request_seconds_bucket{shard="0",le="+Inf"} 3`,
		`dynagg_router_shard_request_seconds_bucket{shard="1",le="+Inf"} 3`,
		"# TYPE dynagg_router_request_seconds histogram",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}
