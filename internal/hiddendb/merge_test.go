package hiddendb

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dynagg/dynagg/internal/schema"
)

// TestMergePartialsEquivalence is the wire-level half of the
// scatter-gather proof: folding per-shard top-k partials with
// MergePartials — exactly what the multi-process router does with
// decoded shard answers — reconstructs the answer the unsharded engine
// and the in-process ShardedIface give, at every shard count, under
// churn.
func TestMergePartialsEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			flat, ss, churn := mirroredStores(t, 41, 1100, shards, []int{7, 5, 4, 6})
			const k = 25
			fi := NewIface(flat, k, nil)
			si := NewShardedIface(ss, k, nil)
			// One single-shard interface per shard store plays the role of
			// the remote shard daemons: its top-k partial is what a daemon
			// would put on the wire.
			parts := make([]*Iface, shards)
			for i := range parts {
				parts[i] = NewIface(ss.Shard(i), k, nil)
			}
			rng := rand.New(rand.NewSource(43))
			for round := 0; round < 3; round++ {
				if round > 0 {
					churn(130, 90)
					ss.AdvanceEpoch()
				}
				for i := 0; i < 50; i++ {
					q := randomQueryOver(rng, flat.Schema())
					want, err := fi.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					partials := make([]Result, shards)
					for j, p := range parts {
						r, err := p.Search(q)
						if err != nil {
							t.Fatal(err)
						}
						partials[j] = r
					}
					got := MergePartials(partials, k, nil)
					if resultSignature(got) != resultSignature(want) {
						t.Fatalf("round %d query %v: merged partials diverge\n got %s\nwant %s",
							round, q, resultSignature(got), resultSignature(want))
					}
					sgot, err := si.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					if resultSignature(got) != resultSignature(sgot) {
						t.Fatalf("round %d query %v: merge vs ShardedIface diverge", round, q)
					}
				}
			}
		})
	}
}

// TestMergePartialsOverflow pins the overflow fold rule: any shard
// overflowing forces it, and non-overflowing shards returning more than
// k tuples in total force it — because then the summed count is the
// exact global match count.
func TestMergePartialsOverflow(t *testing.T) {
	mk := func(ids ...uint64) Result {
		r := Result{}
		for _, id := range ids {
			r.Tuples = append(r.Tuples, &schema.Tuple{ID: id, Vals: []uint16{0}})
		}
		return r
	}
	const k = 3
	if got := MergePartials([]Result{mk(1, 2), mk(3)}, k, nil); got.Overflow {
		t.Fatalf("total %d <= k=%d must not overflow", 3, k)
	}
	if got := MergePartials([]Result{mk(1, 2), mk(3, 4)}, k, nil); !got.Overflow {
		t.Fatalf("total 4 > k=%d must overflow", k)
	}
	over := mk(1, 2, 3)
	over.Overflow = true
	if got := MergePartials([]Result{over, mk()}, k, nil); !got.Overflow {
		t.Fatal("any-shard overflow must propagate")
	}
	if got := MergePartials([]Result{over, mk()}, k, nil); len(got.Tuples) != 3 {
		t.Fatalf("merged top-k has %d tuples, want 3", len(got.Tuples))
	}
	if got := MergePartials(nil, k, nil); got.Overflow || len(got.Tuples) != 0 {
		t.Fatal("empty fold must be an empty non-overflowing result")
	}
}

// twoPhaseStore builds a small sharded store for epoch lifecycle tests.
func twoPhaseStore(t *testing.T) (*ShardedStore, func(n int)) {
	t.Helper()
	_, ss, churn := mirroredStores(t, 77, 400, 4, []int{5, 4, 3})
	return ss, func(n int) { churn(n, 0) }
}

func TestFreezePublishLifecycle(t *testing.T) {
	ss, grow := twoPhaseStore(t)
	base := ss.Epoch() // lazy first epoch, seq 1
	if base.Seq() != 1 {
		t.Fatalf("lazy first epoch seq = %d, want 1", base.Seq())
	}

	if _, err := ss.PublishPending(2); err != ErrNoPendingEpoch {
		t.Fatalf("publish without freeze: err = %v, want ErrNoPendingEpoch", err)
	}

	cur, err := ss.FreezeEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if cur != 1 {
		t.Fatalf("freeze reported current seq %d, want 1", cur)
	}
	if !ss.EpochFrozen() {
		t.Fatal("EpochFrozen must report true after freeze")
	}
	if _, err := ss.FreezeEpoch(); err != ErrEpochFrozen {
		t.Fatalf("double freeze: err = %v, want ErrEpochFrozen", err)
	}

	// Mutations after the freeze must not leak into the published epoch.
	frozenSize := ss.Size()
	grow(50)
	if _, err := ss.PublishPending(1); err != ErrStaleEpochSeq {
		t.Fatalf("stale publish: err = %v, want ErrStaleEpochSeq", err)
	}
	if !ss.EpochFrozen() {
		t.Fatal("a stale publish must keep the pending set for the coordinator's abort")
	}
	e, err := ss.PublishPending(5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq() != 5 {
		t.Fatalf("published seq = %d, want 5", e.Seq())
	}
	if ss.EpochFrozen() {
		t.Fatal("publish must clear the pending set")
	}
	if e.Size() != frozenSize {
		t.Fatalf("published epoch size %d, want the frozen-time size %d", e.Size(), frozenSize)
	}

	// Rollback: aborting the seq that just published restores the prior
	// epoch; aborting anything else is a no-op.
	if ss.AbortEpoch(4) {
		t.Fatal("abort of a non-current seq must not roll back")
	}
	if !ss.AbortEpoch(5) {
		t.Fatal("abort of the just-published seq must roll back")
	}
	if got := ss.Epoch().Seq(); got != 1 {
		t.Fatalf("after rollback epoch seq = %d, want 1", got)
	}
	if ss.AbortEpoch(5) {
		t.Fatal("rollback must be one-shot")
	}
}

func TestAbortDiscardsPendingFreeze(t *testing.T) {
	ss, _ := twoPhaseStore(t)
	ss.Epoch()
	if _, err := ss.FreezeEpoch(); err != nil {
		t.Fatal(err)
	}
	if ss.AbortEpoch(0) {
		t.Fatal("abort(0) discards the freeze but never rolls back")
	}
	if ss.EpochFrozen() {
		t.Fatal("abort must discard the pending freeze")
	}
	if _, err := ss.PublishPending(9); err != ErrNoPendingEpoch {
		t.Fatalf("publish after abort: err = %v, want ErrNoPendingEpoch", err)
	}
}

// TestAdvanceEpochSupersedesTwoPhase: a round driver's AdvanceEpoch
// wipes in-flight two-phase state — the frozen set cannot publish over
// it, and no rollback can regress past it.
func TestAdvanceEpochSupersedesTwoPhase(t *testing.T) {
	ss, _ := twoPhaseStore(t)
	ss.Epoch()
	if _, err := ss.FreezeEpoch(); err != nil {
		t.Fatal(err)
	}
	adv := ss.AdvanceEpoch()
	if ss.EpochFrozen() {
		t.Fatal("AdvanceEpoch must discard the pending freeze")
	}
	if _, err := ss.PublishPending(adv.Seq() + 1); err != ErrNoPendingEpoch {
		t.Fatalf("publish after AdvanceEpoch: err = %v, want ErrNoPendingEpoch", err)
	}
	if ss.AbortEpoch(adv.Seq()) {
		t.Fatal("AdvanceEpoch leaves nothing to roll back")
	}
}
