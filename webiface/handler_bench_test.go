package webiface

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/dynagg/dynagg/internal/hiddendb"
	"github.com/dynagg/dynagg/internal/httpapi"
	"github.com/dynagg/dynagg/internal/workload"
)

// The before/after pair for the wire fast path. legacyHandler is the
// pre-fast-path serving code shape, preserved here as the benchmark
// baseline: per-request url.Values parse, a fresh Query, an engine
// Search and a full encoding/json encode of the wireResult. The live
// handler answers the same request off the pooled parse scratch and the
// pre-encoded answer cache. TestLegacyBenchHandlerEquivalence pins the
// two to identical bytes so the benchmark compares equal work.

type legacyHandler struct {
	b Backend
}

func (h *legacyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	var preds []hiddendb.Pred
	seen := make(map[int]bool)
	for _, raw := range vals["where"] {
		attr, val, err := parsePred(raw)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		if attr < 0 || attr >= h.b.Schema().M() {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				fmt.Sprintf("unknown attribute %d", attr))
			return
		}
		if seen[attr] {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				fmt.Sprintf("duplicate predicate on attribute %d", attr))
			return
		}
		seen[attr] = true
		preds = append(preds, hiddendb.Pred{Attr: attr, Val: val})
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].Attr < preds[j].Attr })
	res, err := h.b.Search(hiddendb.NewQuery(preds...))
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	out := wireResult{K: h.b.K(), Overflow: res.Overflow}
	for _, t := range res.Tuples {
		out.Tuples = append(out.Tuples, wireTuple{ID: t.ID, Vals: t.Vals, Aux: t.Aux})
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

// discardRW is a reusable ResponseWriter for benchmarking the handler
// without net/http's per-request response machinery. It implements
// io.StringWriter like the production http.response does, so the
// handler's write path costs what it costs in a real server.
type discardRW struct {
	h http.Header
	n int
}

func newDiscardRW() *discardRW { return &discardRW{h: make(http.Header, 4)} }

func (d *discardRW) Header() http.Header { return d.h }

func (d *discardRW) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

func (d *discardRW) WriteString(s string) (int, error) {
	d.n += len(s)
	return len(s), nil
}

func (d *discardRW) WriteHeader(int) {}

func benchBackend(tb testing.TB) Backend {
	tb.Helper()
	data := workload.AutosLikeN(41, 8000, 10)
	env, err := workload.NewEnv(data, 7500, 42)
	if err != nil {
		tb.Fatal(err)
	}
	return hiddendb.NewIface(env.Store, 50, nil)
}

// TestLegacyBenchHandlerEquivalence keeps the benchmark honest: the
// baseline handler above and the live fast-path handler must produce
// byte-identical bodies, so the ns/op delta measures the same served
// response.
func TestLegacyBenchHandlerEquivalence(t *testing.T) {
	b := benchBackend(t)
	legacy := &legacyHandler{b: b}
	fast := NewHandler(b)
	rng := rand.New(rand.NewSource(3))
	sch := b.Schema()
	for i := 0; i < 30; i++ {
		q := randomQuery(rng, sch, sch.DomainSize)
		path := whereURL(q)
		lw := httptest.NewRecorder()
		legacy.ServeHTTP(lw, httptest.NewRequest(http.MethodGet, path, nil))
		for pass := 0; pass < 2; pass++ { // miss, then cache hit
			fw := httptest.NewRecorder()
			fast.ServeHTTP(fw, httptest.NewRequest(http.MethodGet, path, nil))
			if lw.Code != fw.Code {
				t.Fatalf("query %d pass %d: status %d vs %d", i, pass, lw.Code, fw.Code)
			}
			if !bytes.Equal(lw.Body.Bytes(), fw.Body.Bytes()) {
				t.Fatalf("query %d pass %d (%s): bodies diverged\nlegacy %s\nfast   %s",
					i, pass, path, lw.Body.Bytes(), fw.Body.Bytes())
			}
		}
	}
}

const benchHotPath = "/v1/search?where=2:1&where=5:0"

// TestHandlerSearchHotAllocs pins the fast-path allocation contract: a
// warm-cache GET allocates at most once per request beyond the response
// write (steady state is zero — pooled scratch, zero-copy key probe,
// memoized body).
func TestHandlerSearchHotAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by race-detector instrumentation")
	}
	h := NewHandler(benchBackend(t))
	req := httptest.NewRequest(http.MethodGet, benchHotPath, nil)
	w := newDiscardRW()
	for i := 0; i < 4; i++ { // publish the snapshot, cache and wire bytes
		h.ServeHTTP(w, req)
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	})
	if allocs > 1 {
		t.Fatalf("hot-path GET costs %.1f allocs/op, budget is 1", allocs)
	}
}

// BenchmarkHandlerSearchHot measures one warm repeated GET through both
// handlers — the before/after pair for the wire fast path. Compare:
//
//	go test ./webiface/ -run xx -bench HandlerSearchHot -benchmem
func BenchmarkHandlerSearchHot(b *testing.B) {
	for _, tc := range []struct {
		name    string
		handler http.Handler
	}{
		{"legacy", &legacyHandler{b: benchBackend(b)}},
		{"fastpath", NewHandler(benchBackend(b))},
	} {
		b.Run(tc.name, func(b *testing.B) {
			req := httptest.NewRequest(http.MethodGet, benchHotPath, nil)
			w := newDiscardRW()
			for i := 0; i < 4; i++ {
				tc.handler.ServeHTTP(w, req)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.handler.ServeHTTP(w, req)
			}
		})
	}
}

// BenchmarkHandlerSearchBatch: the batched POST path, pooled decode and
// splice buffer against per-request allocation. Body bytes are rebuilt
// per iteration (the reader is consumed), which is charged to both
// sides of any comparison equally.
func BenchmarkHandlerSearchBatch(b *testing.B) {
	h := NewHandler(benchBackend(b))
	body := []byte(`{"queries":[{"where":["2:1","5:0"]},{"where":["0:3"]},{"where":[]}]}`)
	w := newDiscardRW()
	warm := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	for i := 0; i < 4; i++ {
		warm.Body = nopCloser{bytes.NewReader(body)}
		h.ServeHTTP(w, warm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}

type nopCloser struct{ *bytes.Reader }

func (nopCloser) Close() error { return nil }
